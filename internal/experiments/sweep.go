package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// SweepPoint is one variation of a base scenario.
type SweepPoint struct {
	// Label names the point in output (e.g. "epoch=50ms").
	Label string
	// Mutate applies the variation to a copy of the base scenario.
	Mutate func(*Scenario)
}

// SweepResult summarizes one sweep point's run.
type SweepResult struct {
	// Label echoes the point.
	Label string
	// Losses and LossRatio quantify packet loss.
	Losses    int64
	LossRatio float64
	// Jain is the fairness index over normalized allowed rates at the
	// end of the run.
	Jain float64
	// WorstConv is the slowest flow's convergence time to ±25% of its
	// expected share; AllConverged reports whether every flow settled.
	WorstConv    time.Duration
	AllConverged bool
}

// SweepScenarios expands a base scenario into one spec per sweep point —
// the pure description of the §4.4 sensitivity batch, ready to hand to an
// execution engine (internal/run) or to Run serially. The returned slice
// is index-aligned with points.
func SweepScenarios(base Scenario, points []SweepPoint) []Scenario {
	out := make([]Scenario, 0, len(points))
	for _, pt := range points {
		sc := base
		if pt.Mutate != nil {
			pt.Mutate(&sc)
		}
		sc.Name = base.Name + "/" + pt.Label
		out = append(out, sc)
	}
	return out
}

// Summarize condenses one sweep run into the loss / fairness /
// convergence row the §4.4 table prints.
func Summarize(label string, sc Scenario, res *Result) SweepResult {
	var delivered int64
	for _, f := range res.Flows {
		delivered += f.Delivered
	}
	sr := SweepResult{
		Label:  label,
		Losses: res.TotalLosses,
		Jain:   res.JainIndexAt(res.Duration-res.SampleWindow, sc),
	}
	if delivered > 0 {
		sr.LossRatio = float64(res.TotalLosses) / float64(delivered)
	}
	worst := time.Duration(0)
	all := true
	for _, f := range res.Flows {
		at, ok := metrics.ConvergenceTime(f.AllowedRate, res.ExpectedFullSet[f.Index], 0.25)
		if !ok {
			all = false
			continue
		}
		if at > worst {
			worst = at
		}
	}
	sr.WorstConv = worst
	sr.AllConverged = all
	return sr
}

// Sweep runs the base scenario once per point, serially, and summarizes
// each run. It regenerates the paper's §4.4 sensitivity claim ("Corelite
// is not very sensitive to these parameters") as a table; cmd/sweep runs
// the same specs through the internal/run pool instead.
func Sweep(base Scenario, points []SweepPoint) ([]SweepResult, error) {
	scs := SweepScenarios(base, points)
	out := make([]SweepResult, 0, len(points))
	for i, sc := range scs {
		res, err := Run(sc)
		if err != nil {
			return nil, fmt.Errorf("sweep point %q: %w", points[i].Label, err)
		}
		out = append(out, Summarize(points[i].Label, sc, res))
	}
	return out, nil
}

// EpochSweep varies the congestion/adaptation epoch (paper §4.4: "different
// core router epoch sizes").
func EpochSweep(values ...time.Duration) []SweepPoint {
	if len(values) == 0 {
		values = []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	}
	out := make([]SweepPoint, 0, len(values))
	for _, v := range values {
		v := v
		out = append(out, SweepPoint{
			Label: fmt.Sprintf("epoch=%v", v),
			Mutate: func(sc *Scenario) {
				edge := core.DefaultEdgeConfig()
				edge.Epoch = v
				router := core.DefaultRouterConfig()
				router.Epoch = v
				sc.EdgeConfig = edge
				sc.RouterConfig = router
			},
		})
	}
	return out
}

// QThreshSweep varies the congestion-detection threshold ("different
// marking thresholds").
func QThreshSweep(values ...float64) []SweepPoint {
	if len(values) == 0 {
		values = []float64{4, 8, 12, 16}
	}
	out := make([]SweepPoint, 0, len(values))
	for _, v := range values {
		v := v
		out = append(out, SweepPoint{
			Label: fmt.Sprintf("qthresh=%v", v),
			Mutate: func(sc *Scenario) {
				router := core.DefaultRouterConfig()
				router.QThresh = v
				sc.RouterConfig = router
			},
		})
	}
	return out
}

// LatencySweep varies the per-hop propagation latency ("channels with
// large latencies").
func LatencySweep(values ...time.Duration) []SweepPoint {
	if len(values) == 0 {
		values = []time.Duration{10 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond}
	}
	out := make([]SweepPoint, 0, len(values))
	for _, v := range values {
		v := v
		out = append(out, SweepPoint{
			Label: fmt.Sprintf("latency=%v", v),
			Mutate: func(sc *Scenario) {
				sc.TopologyOptions.LinkDelay = v
			},
		})
	}
	return out
}

// K1Sweep varies the marking constant.
func K1Sweep(values ...float64) []SweepPoint {
	if len(values) == 0 {
		values = []float64{0.5, 1, 2, 4}
	}
	out := make([]SweepPoint, 0, len(values))
	for _, v := range values {
		v := v
		out = append(out, SweepPoint{
			Label: fmt.Sprintf("k1=%v", v),
			Mutate: func(sc *Scenario) {
				edge := core.DefaultEdgeConfig()
				edge.K1 = v
				sc.EdgeConfig = edge
			},
		})
	}
	return out
}
