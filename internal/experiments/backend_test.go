package experiments

import (
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
)

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		err  bool
	}{
		{"", BackendPacket, false},
		{"packet", BackendPacket, false},
		{"flow", BackendFlow, false},
		{"fluid", BackendFlow, false},
		{"quantum", 0, true},
		{"Packet", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseBackend(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseBackend(%q): no error", tc.in)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParseBackend(%q) = (%v, %v), want %v", tc.in, got, err, tc.want)
		}
	}
	if got := BackendPacket.String(); got != "packet" {
		t.Errorf("BackendPacket.String() = %q", got)
	}
	if got := BackendFlow.String(); got != "flow" {
		t.Errorf("BackendFlow.String() = %q", got)
	}
	if got := Backend(7).String(); !strings.Contains(got, "7") {
		t.Errorf("Backend(7).String() = %q", got)
	}
}

func baseScenario() Scenario {
	return Scenario{
		Name:     "t",
		Scheme:   SchemeCorelite,
		Duration: time.Second,
		NumFlows: 2,
	}
}

func TestValidateBackend(t *testing.T) {
	sc := baseScenario()
	sc.Backend = Backend(42)
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("unknown backend: err = %v", err)
	}

	// The flow backend rejects packet-only knobs with actionable errors.
	sc = baseScenario()
	sc.Backend = BackendFlow
	sc.Transports = map[int]Transport{1: TransportTCP}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "packet backend") {
		t.Errorf("flow+TCP: err = %v", err)
	}

	sc = baseScenario()
	sc.Backend = BackendFlow
	sc.Tracer = &netem.WriterTracer{W: io.Discard}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "packet backend") {
		t.Errorf("flow+tracer: err = %v", err)
	}

	// The same knobs are fine on the packet backend.
	sc = baseScenario()
	sc.Transports = map[int]Transport{1: TransportTCP}
	sc.Tracer = &netem.WriterTracer{W: io.Discard}
	if err := sc.Validate(); err != nil {
		t.Errorf("packet backend with TCP+tracer: %v", err)
	}
}

func TestValidateChain(t *testing.T) {
	chain := func() Scenario {
		sc := baseScenario()
		sc.NumFlows = 0
		sc.Backend = BackendFlow
		sc.Chain = &ChainTopology{Cores: 5, Flows: 10}
		norm, err := sc.normalize()
		if err != nil {
			t.Fatalf("normalize: %v", err)
		}
		return norm
	}

	if err := chain().Validate(); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}

	sc := chain()
	sc.Backend = BackendPacket
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "flow backend") {
		t.Errorf("chain on packet backend: err = %v", err)
	}

	sc = chain()
	sc.Chain.Cores = 1
	if err := sc.Validate(); err == nil {
		t.Error("1-core chain accepted")
	}

	sc = chain()
	sc.Chain.Flows = 0
	sc.NumFlows = 0
	if err := sc.Validate(); err == nil {
		t.Error("0-flow chain accepted")
	}

	sc = chain()
	sc.Dumbbell = true
	if err := sc.Validate(); err == nil {
		t.Error("chain+dumbbell accepted")
	}
}

// TestChainRunFlow exercises the generated chain end to end on the flow
// backend: deterministic, non-trivial rates on every flow.
func TestChainRunFlow(t *testing.T) {
	sc := Scenario{
		Name:     "chain-smoke",
		Scheme:   SchemeCorelite,
		Duration: 30 * time.Second,
		Backend:  BackendFlow,
		Chain:    &ChainTopology{Cores: 10, Flows: 40},
		Seed:     3,
	}
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Flows) != 40 {
		t.Fatalf("got %d flows, want 40", len(r1.Flows))
	}
	var total int64
	for _, f := range r1.Flows {
		total += f.Delivered
	}
	if total == 0 {
		t.Fatal("chain delivered nothing")
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Flows {
		if r1.Flows[i].Delivered != r2.Flows[i].Delivered {
			t.Fatalf("chain run not deterministic at flow %d", i)
		}
	}
}

// TestFlowBackendFigureShape pins the Result contract promises the Engine
// interface makes: same series grid, oracle and totals shape as the packet
// engine, whichever backend ran.
func TestFlowBackendFigureShape(t *testing.T) {
	sc := Fig5Scenario(1)
	sc.Duration = 20 * time.Second
	pr, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Backend = BackendFlow
	fr, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Flows) != len(pr.Flows) {
		t.Fatalf("flow backend: %d flows, packet %d", len(fr.Flows), len(pr.Flows))
	}
	for i := range fr.Flows {
		ff, pf := fr.Flows[i], pr.Flows[i]
		if ff.Index != pf.Index || ff.Weight != pf.Weight {
			t.Errorf("flow %d: identity mismatch (%d,%g) vs (%d,%g)",
				i, ff.Index, ff.Weight, pf.Index, pf.Weight)
		}
		if len(ff.ReceiveRate) != len(pf.ReceiveRate) {
			t.Errorf("flow %d: %d rate samples, packet %d",
				i, len(ff.ReceiveRate), len(pf.ReceiveRate))
		}
	}
	if len(fr.ExpectedFullSet) != len(pr.ExpectedFullSet) {
		t.Errorf("oracle sets differ: %d vs %d", len(fr.ExpectedFullSet), len(pr.ExpectedFullSet))
	}
}
