package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/adapt"
	"repro/internal/flowsim"
	"repro/internal/invariant"
	"repro/internal/maxmin"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/topospec"
	"repro/internal/workload"
)

// flowEngine executes scenarios on the fluid engine (internal/flowsim): no
// packets, no queues — per-flow rates advance between events as the
// demand-capped weighted water-filling allocation, with the schemes' LIMD
// loops driving the demands. It reuses the scenario layer's topology
// builders and oracle so that, over steady windows, its rates agree with
// the packet engine within the figure tolerances (pinned by the
// differential tests in backend_diff_test.go).
type flowEngine struct{}

// flowModel is the fluid engine's view of one scenario: the capacity graph
// plus the placement metadata the measurement layer needs.
type flowModel struct {
	model *flowsim.Model
	// placements mirror Model.Flows order; for generated chains they are
	// synthetic (Index/Weight/CoreLinks filled, nodes named "chain").
	placements []topology.Placement
}

// Run implements Engine. sc arrives normalized and validated, with
// SampleWindow defaulted.
func (flowEngine) Run(sc Scenario) (*Result, error) {
	fm, err := buildFlowModel(sc)
	if err != nil {
		return nil, fmt.Errorf("build flow model: %w", err)
	}

	control := flowsim.ControlMarker
	var adaptCfg adapt.Config
	epoch := time.Duration(0)
	switch sc.Scheme {
	case SchemeCorelite:
		adaptCfg = sc.EdgeConfig.Adapt
		epoch = sc.EdgeConfig.Epoch
	case SchemeCSFQ:
		control = flowsim.ControlLoss
		adaptCfg = sc.CSFQEdgeConfig.Adapt
		epoch = sc.CSFQEdgeConfig.Epoch
	}

	schedules := make([]workload.Schedule, len(fm.model.Flows))
	for i, f := range fm.model.Flows {
		schedules[i] = scheduleOf(sc, f.Index)
	}

	var onViolation func(flowsim.Violation)
	var onChecks func(int64)
	if sc.Check.Enabled() {
		onViolation = func(v flowsim.Violation) {
			rule := invariant.RuleFluidConservation
			if v.Kind == flowsim.KindBounds {
				rule = invariant.RuleFluidBounds
			}
			sc.Check.Report(invariant.Violation{
				At: v.At, Rule: rule, Site: v.Site,
				Expected: v.Expected, Actual: v.Actual, Detail: v.Detail,
			})
		}
		onChecks = sc.Check.AddChecks
	}

	solver := flowsim.SolverAuto
	if sc.FullSolve {
		solver = flowsim.SolverFull
	}

	out, err := flowsim.Run(flowsim.Config{
		Model:        fm.model,
		Horizon:      sc.Duration,
		Epoch:        epoch,
		SampleWindow: sc.SampleWindow,
		Control:      control,
		Adapt:        adaptCfg,
		Solver:       solver,
		Schedules:    schedules,
		OnViolation:  onViolation,
		OnChecks:     onChecks,
		Obs:          sc.Obs,
		ObsSample:    sc.ObsSample,
		Progress:     sc.Progress,
	})
	if err != nil {
		return nil, fmt.Errorf("run scenario %q: %w", sc.Name, err)
	}

	expected, err := flowExpectedRates(sc, fm, nil)
	if err != nil {
		return nil, fmt.Errorf("expected rates: %w", err)
	}
	res := &Result{
		Name:            sc.Name,
		Scheme:          sc.Scheme,
		ExpectedFullSet: expected,
		Events:          out.Events,
		SampleWindow:    sc.SampleWindow,
		Duration:        sc.Duration,
	}
	perEdge := make(map[string]int)
	for i, f := range fm.model.Flows {
		pl := fm.placements[i]
		local := perEdge[pl.Ingress]
		perEdge[pl.Ingress] = local + 1
		fo := &out.Flows[i]
		fr := FlowResult{
			Index:       f.Index,
			ID:          packet.FlowID{Edge: pl.Ingress, Local: local},
			Weight:      f.Weight,
			AllowedRate: fo.Allowed,
			ReceiveRate: fo.Rate,
			Cumulative:  fo.Cumulative,
			Delivered:   int64(fo.Delivered + 0.5),
			Losses:      int64(fo.Lost + 0.5),
		}
		res.TotalLosses += fr.Losses
		res.Flows = append(res.Flows, fr)
	}
	if sc.Check.Enabled() {
		checkFairnessFlows(sc, fm, res)
		res.Violations = sc.Check.Violations()
		res.InvariantChecks = sc.Check.Checks()
	}
	return res, nil
}

// buildFlowModel converts the scenario's topology into a fluid capacity
// graph. Built-in and spec topologies go through the same builders as the
// packet engine (so placements, weights and link capacities are identical);
// generated chains are constructed directly, which is what lets the flow
// backend scale to thousands of nodes without the all-pairs route
// computation a packet network needs.
func buildFlowModel(sc Scenario) (*flowModel, error) {
	if sc.Chain != nil {
		return buildChainModel(sc)
	}
	if sc.Spec != nil && len(sc.Spec.Flows) >= flowsim.IncrementalMinFlows && specFullyPinned(sc.Spec) {
		return buildSpecModelDirect(sc)
	}
	return buildCloudModel(sc)
}

// buildCloudModel is the generic fluid-model builder: construct the packet
// network, take its oracle problem, and mirror it into a fluid graph.
func buildCloudModel(sc Scenario) (*flowModel, error) {
	cloud, err := buildCloud(sc, sim.NewScheduler())
	if err != nil {
		return nil, err
	}
	p := cloud.MaxMinProblem(nil)
	if err := applyCross(sc, p.Capacity); err != nil {
		return nil, err
	}
	m := flowsim.NewModel()
	for _, pl := range cloud.Placements {
		links := make([]int, 0, len(pl.CoreLinks))
		for _, name := range pl.CoreLinks {
			cap, ok := p.Capacity[name]
			if !ok {
				return nil, fmt.Errorf("flow %d: core link %q missing from oracle problem", pl.Index, name)
			}
			li, err := m.AddLink(name, cap)
			if err != nil {
				return nil, err
			}
			links = append(links, li)
		}
		if err := m.AddFlow(flowsim.Flow{
			Index:       pl.Index,
			Weight:      pl.Weight,
			MinRate:     sc.MinRates[pl.Index],
			FixedDemand: sc.Unresponsive[pl.Index],
			Links:       links,
		}); err != nil {
			return nil, err
		}
	}
	return &flowModel{model: m, placements: cloud.Placements}, nil
}

// specFullyPinned reports whether every flow in the spec pins its complete
// path, which is what makes the fluid model derivable without building the
// packet network at all.
func specFullyPinned(s *topospec.Spec) bool {
	if len(s.Flows) == 0 {
		return false
	}
	for _, f := range s.Flows {
		if len(f.Via) == 0 {
			return false
		}
	}
	return true
}

// buildSpecModelDirect converts a fully-pinned spec straight into the fluid
// capacity graph, skipping netem entirely. Building the packet network for
// a 100k-flow fat-tree means 200k+ nodes, links and route installs that the
// fluid engine then never touches; this path produces the identical model —
// the same link set (each pinned path's links, promoted like Build does),
// the same capacities (RateBps over 8·1000-byte packets, exactly the
// packet network's PacketsPerSecond(1000)) and the same placements — so
// the generic and direct builders are interchangeable (pinned by the
// differential test in engine_flow_test.go).
func buildSpecModelDirect(sc Scenario) (*flowModel, error) {
	s := sc.Spec
	if err := s.Validate(); err != nil {
		return nil, err
	}
	roles := make(map[string]topospec.NodeRole, len(s.Nodes))
	for _, n := range s.Nodes {
		roles[n.Name] = n.Role
	}
	rate := make(map[string]float64, len(s.Links))
	caps := make(map[string]float64, len(s.Links))
	for _, l := range s.Links {
		name := l.From + "->" + l.To
		pps := l.RateBps / (8 * 1000.0)
		rate[name] = pps
		// Core-core links are capacity constraints even when no flow
		// crosses them (cross traffic may target them), mirroring
		// Cloud.CoreLinks before per-flow promotion.
		if roles[l.From] == topospec.RoleCore && roles[l.To] == topospec.RoleCore {
			caps[name] = pps
		}
	}
	flows := make([]topospec.FlowSpec, len(s.Flows))
	copy(flows, s.Flows)
	sort.Slice(flows, func(i, j int) bool { return flows[i].Index < flows[j].Index })
	// Every link on a pinned path is promoted into the constraint set, the
	// same rule Build applies to via-pinned flows.
	for _, f := range flows {
		for i := 0; i+1 < len(f.Via); i++ {
			name := f.Via[i] + "->" + f.Via[i+1]
			pps, ok := rate[name]
			if !ok {
				return nil, fmt.Errorf("flow %d: pinned hop %q is not a link", f.Index, name)
			}
			caps[name] = pps
		}
	}
	if err := applyCross(sc, caps); err != nil {
		return nil, err
	}
	m := flowsim.NewModel()
	placements := make([]topology.Placement, 0, len(flows))
	for _, f := range flows {
		nHops := len(f.Via) - 1
		links := make([]int, 0, nHops)
		crossed := make([]string, 0, nHops)
		for i := 0; i+1 < len(f.Via); i++ {
			name := f.Via[i] + "->" + f.Via[i+1]
			li, err := m.AddLink(name, caps[name])
			if err != nil {
				return nil, err
			}
			links = append(links, li)
			crossed = append(crossed, name)
		}
		if err := m.AddFlow(flowsim.Flow{
			Index:       f.Index,
			Weight:      f.Weight,
			MinRate:     sc.MinRates[f.Index],
			FixedDemand: sc.Unresponsive[f.Index],
			Links:       links,
		}); err != nil {
			return nil, err
		}
		placements = append(placements, topology.Placement{
			Index:     f.Index,
			Weight:    f.Weight,
			Ingress:   f.Ingress,
			Egress:    f.Egress,
			CoreLinks: crossed,
			Hops:      nHops,
			Relays:    f.Relays,
		})
	}
	return &flowModel{model: m, placements: placements}, nil
}

// buildChainModel generates the synthetic chain: Cores−1 equal links, each
// flow crossing a seed-deterministic contiguous span.
func buildChainModel(sc Scenario) (*flowModel, error) {
	cfg := *sc.Chain
	if cfg.CapacityPPS <= 0 {
		cfg.CapacityPPS = topology.LinkRateBps / 8 / float64(packet.DefaultSizeBytes)
	}
	if cfg.MaxSpan <= 0 {
		cfg.MaxSpan = 4
	}
	nLinks := cfg.Cores - 1
	if cfg.MaxSpan > nLinks {
		cfg.MaxSpan = nLinks
	}
	m := flowsim.NewModel()
	names := make([]string, nLinks)
	for i := 0; i < nLinks; i++ {
		names[i] = fmt.Sprintf("C%d->C%d", i+1, i+2)
	}
	caps := make(map[string]float64, nLinks)
	for _, name := range names {
		caps[name] = cfg.CapacityPPS
	}
	if err := applyCross(sc, caps); err != nil {
		return nil, err
	}
	for _, name := range names {
		if _, err := m.AddLink(name, caps[name]); err != nil {
			return nil, err
		}
	}
	rng := sim.NewRNG(sc.Seed).Stream("chain")
	placements := make([]topology.Placement, 0, cfg.Flows)
	for idx := 1; idx <= cfg.Flows; idx++ {
		span := 1 + rng.Intn(cfg.MaxSpan)
		start := rng.Intn(nLinks - span + 1)
		links := make([]int, span)
		coreLinks := make([]string, span)
		for j := 0; j < span; j++ {
			links[j] = start + j
			coreLinks[j] = names[start+j]
		}
		weight, ok := sc.Weights[idx]
		if !ok {
			weight = sc.DefaultWeight
		}
		if weight <= 0 {
			weight = float64(1 + (idx-1)%5)
		}
		if err := m.AddFlow(flowsim.Flow{
			Index:       idx,
			Weight:      weight,
			MinRate:     sc.MinRates[idx],
			FixedDemand: sc.Unresponsive[idx],
			Links:       links,
		}); err != nil {
			return nil, err
		}
		placements = append(placements, topology.Placement{
			Index: idx, Weight: weight,
			Ingress: "chain", Egress: "chain",
			CoreLinks: coreLinks, Hops: span,
		})
	}
	return &flowModel{model: m, placements: placements}, nil
}

// applyCross subtracts each cross stream's mean rate from its link's
// capacity — the same adjustment the packet oracle makes — so the fluid
// allocation sees the residual capacity the adaptive flows compete for.
func applyCross(sc Scenario, capacity map[string]float64) error {
	for i, ct := range sc.Cross {
		c, ok := capacity[ct.Link]
		if !ok {
			return fmt.Errorf("cross stream %d: unknown link %q", i, ct.Link)
		}
		c -= ct.MeanRate()
		if c < 0 {
			c = 0
		}
		capacity[ct.Link] = c
	}
	return nil
}

// flowExpectedRates solves the weighted max-min oracle directly on the
// fluid model (whose capacities already account for cross traffic), for
// the given active set (nil = all flows). Large models use the fluid
// engine's slice-based allocator — same algorithm, no string-keyed maps —
// because at 10k+ flows the map-based reference solver dominates the whole
// run; small models keep the maxmin package so the figure-scale expected
// sets stay bit-for-bit what they always were.
func flowExpectedRates(sc Scenario, fm *flowModel, active map[int]bool) (map[int]float64, error) {
	if len(fm.model.Flows) >= flowsim.IncrementalMinFlows {
		return flowExpectedRatesLarge(sc, fm, active), nil
	}
	return flowExpectedRatesMaxmin(sc, fm, active)
}

// flowExpectedRatesMaxmin is the map-based reference oracle (the maxmin
// package), kept verbatim for small models and as the differential
// reference for flowExpectedRatesLarge.
func flowExpectedRatesMaxmin(sc Scenario, fm *flowModel, active map[int]bool) (map[int]float64, error) {
	p := maxmin.Problem{
		Capacity: make(map[string]float64, len(fm.model.Links)),
		Flows:    make(map[string]maxmin.Flow, len(fm.model.Flows)),
	}
	for _, l := range fm.model.Links {
		p.Capacity[l.Name] = l.Capacity
	}
	mins := make(map[string]float64)
	out := make(map[int]float64, len(fm.model.Flows))
	for _, f := range fm.model.Flows {
		if active != nil && !active[f.Index] {
			continue
		}
		if f.FixedDemand > 0 && sc.Scheme == SchemeCorelite {
			// Unresponsive under Corelite: the FIFO core cannot police the
			// blast, so it takes its offered rate off the top of every
			// link it crosses. (Under CSFQ it is policed to its weighted
			// share and stays an ordinary member of the problem.)
			for _, li := range f.Links {
				name := fm.model.Links[li].Name
				c := p.Capacity[name] - f.FixedDemand
				if c < 0 {
					c = 0
				}
				p.Capacity[name] = c
			}
			out[f.Index] = f.FixedDemand
			continue
		}
		links := make([]string, len(f.Links))
		for j, li := range f.Links {
			links[j] = fm.model.Links[li].Name
		}
		key := strconv.Itoa(f.Index)
		p.Flows[key] = maxmin.Flow{Weight: f.Weight, Links: links}
		if f.MinRate > 0 {
			mins[key] = f.MinRate
		}
	}
	alloc, err := maxmin.SolveWithMinimums(p, mins)
	if err != nil {
		return nil, err
	}
	for _, f := range fm.model.Flows {
		if active != nil && !active[f.Index] {
			continue
		}
		if _, done := out[f.Index]; done {
			continue
		}
		out[f.Index] = alloc[strconv.Itoa(f.Index)]
	}
	return out, nil
}

// flowExpectedRatesLarge is flowExpectedRates on the allocator: Corelite
// unresponsive blasts come off the top of their links' capacities (on a
// copy of the link table) and everyone else enters the water-filling with
// unbounded demand. Agreement with the maxmin reference is pinned at 1e-6
// by TestFlowExpectedRatesLargeMatchesMaxmin.
func flowExpectedRatesLarge(sc Scenario, fm *flowModel, active map[int]bool) map[int]float64 {
	m := fm.model
	links := make([]flowsim.Link, len(m.Links))
	copy(links, m.Links)
	act := make([]bool, len(m.Flows))
	dem := make([]float64, len(m.Flows))
	out := make(map[int]float64, len(m.Flows))
	for i, f := range m.Flows {
		if active != nil && !active[f.Index] {
			continue
		}
		if f.FixedDemand > 0 && sc.Scheme == SchemeCorelite {
			for _, li := range f.Links {
				c := links[li].Capacity - f.FixedDemand
				if c < 0 {
					c = 0
				}
				links[li].Capacity = c
			}
			out[f.Index] = f.FixedDemand
			continue
		}
		act[i] = true
		dem[i] = -1
	}
	rates := flowsim.SolveMaxMin(&flowsim.Model{Links: links, Flows: m.Flows}, act, dem)
	for i, f := range m.Flows {
		if act[i] {
			out[f.Index] = rates[i]
		}
	}
	return out
}

// checkFairnessFlows is the flow backend's differential oracle feed,
// mirroring checkFairness: measured steady-window rates versus the
// weighted max-min allocation on the fluid model.
func checkFairnessFlows(sc Scenario, fm *flowModel, res *Result) {
	cfg := sc.Check.Config()
	from, to, active, ok := steadyWindow(sc, fm.placements)
	if !ok || to-from < cfg.MinSteady {
		return
	}
	expected, err := flowExpectedRates(sc, fm, active)
	if err != nil {
		return
	}
	mid := from + (to-from)/2
	rates := make([]invariant.FlowRate, 0, len(res.Flows))
	for i := range res.Flows {
		f := &res.Flows[i]
		if !active[f.Index] {
			continue
		}
		if _, unresp := sc.Unresponsive[f.Index]; unresp {
			continue
		}
		exp, found := expected[f.Index]
		if !found {
			continue
		}
		rates = append(rates, invariant.FlowRate{
			Index:    f.Index,
			Expected: exp,
			Measured: f.ReceiveRate.MeanOver(mid, to),
		})
	}
	sc.Check.CheckFairness(to, rates)
}
