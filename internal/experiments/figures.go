package experiments

import (
	"time"

	"repro/internal/topogen"
	"repro/internal/topology"
	"repro/internal/trafficgen"
	"repro/internal/workload"
)

// DefaultSeed is the seed used by the figure runners; pass your own via the
// Scenario constructors to study seed sensitivity.
const DefaultSeed = 1

// Fig3Scenario returns the §4.1 dynamics scenario (Corelite): 20 flows on
// the Figure 2 topology, weights per WeightsFig3; flows 1, 9, 10, 11 and 16
// are active only during t ∈ [250s, 500s); all other flows run t ∈ [0,
// 750s); the simulation lasts 800s. Figure 3 plots the per-flow
// instantaneous ("alloted") rate, Figure 4 the cumulative service.
func Fig3Scenario(seed int64) Scenario {
	schedules := make(map[int]workload.Schedule, 20)
	late := map[int]bool{1: true, 9: true, 10: true, 11: true, 16: true}
	for i := 1; i <= 20; i++ {
		if late[i] {
			schedules[i] = workload.Window(250*time.Second, 500*time.Second)
		} else {
			schedules[i] = workload.Window(0, 750*time.Second)
		}
	}
	return Scenario{
		Name:          "fig3-corelite-dynamics",
		Scheme:        SchemeCorelite,
		Duration:      800 * time.Second,
		Seed:          seed,
		NumFlows:      20,
		Weights:       topology.WeightsFig3(),
		DefaultWeight: 2,
		Schedules:     schedules,
	}
}

// RunFig3 regenerates Figure 3 (instantaneous rate under network
// dynamics). The same Result also carries Figure 4's cumulative service.
func RunFig3(seed int64) (*Result, error) { return Run(Fig3Scenario(seed)) }

// Fig4Scenario returns the Figure 4 spec: the same simulation as Figure 3
// under a distinct name, since Figure 4 plots the cumulative-service
// series (FlowResult.Cumulative) of that run.
func Fig4Scenario(seed int64) Scenario {
	sc := Fig3Scenario(seed)
	sc.Name = "fig4-corelite-cumulative"
	return sc
}

// RunFig4 regenerates Figure 4 (cumulative service). It is the same
// simulation as Figure 3; the cumulative series is in
// FlowResult.Cumulative.
func RunFig4(seed int64) (*Result, error) { return Run(Fig4Scenario(seed)) }

// startupScenario is the §4.2 startup-convergence setup: topology 1 with
// 10 flows, weight ⌈i/2⌉, all starting at t=0, 80s horizon.
func startupScenario(scheme Scheme, name string, seed int64) Scenario {
	return Scenario{
		Name:          name,
		Scheme:        scheme,
		Duration:      80 * time.Second,
		Seed:          seed,
		NumFlows:      10,
		Weights:       topology.WeightsCeilHalf(10),
		DefaultWeight: 1,
	}
}

// Fig5Scenario returns the Corelite startup scenario of §4.2.
func Fig5Scenario(seed int64) Scenario {
	return startupScenario(SchemeCorelite, "fig5-corelite-startup", seed)
}

// Fig6Scenario returns the CSFQ startup scenario of §4.2.
func Fig6Scenario(seed int64) Scenario {
	return startupScenario(SchemeCSFQ, "fig6-csfq-startup", seed)
}

// RunFig5 regenerates Figure 5 (Corelite startup convergence).
func RunFig5(seed int64) (*Result, error) { return Run(Fig5Scenario(seed)) }

// RunFig6 regenerates Figure 6 (CSFQ startup convergence).
func RunFig6(seed int64) (*Result, error) { return Run(Fig6Scenario(seed)) }

// staggeredScenario is the §4.3 rapid-succession setup: 20 flows starting
// one second apart in ascending order; weights per WeightsFig7.
func staggeredScenario(scheme Scheme, name string, seed int64) Scenario {
	schedules := make(map[int]workload.Schedule, 20)
	for i := 1; i <= 20; i++ {
		schedules[i] = workload.Schedule{{Start: time.Duration(i-1) * time.Second}}
	}
	return Scenario{
		Name:          name,
		Scheme:        scheme,
		Duration:      80 * time.Second,
		Seed:          seed,
		NumFlows:      20,
		Weights:       topology.WeightsFig7(),
		DefaultWeight: 2,
		Schedules:     schedules,
	}
}

// Fig7Scenario returns the Corelite staggered-start scenario.
func Fig7Scenario(seed int64) Scenario {
	return staggeredScenario(SchemeCorelite, "fig7-corelite-staggered", seed)
}

// Fig8Scenario returns the CSFQ staggered-start scenario.
func Fig8Scenario(seed int64) Scenario {
	return staggeredScenario(SchemeCSFQ, "fig8-csfq-staggered", seed)
}

// RunFig7 regenerates Figure 7 (Corelite, flows entering 1s apart).
func RunFig7(seed int64) (*Result, error) { return Run(Fig7Scenario(seed)) }

// RunFig8 regenerates Figure 8 (CSFQ, flows entering 1s apart).
func RunFig8(seed int64) (*Result, error) { return Run(Fig8Scenario(seed)) }

// churnScenario is the §4.3 churn setup: flows 1–20 start 1s apart, live
// 60s, stop 1s apart in the same order, and restart 5s after stopping;
// 160s horizon. Flows are therefore simultaneously entering and leaving
// between t = 65s and 80s.
func churnScenario(scheme Scheme, name string, seed int64) Scenario {
	schedules := make(map[int]workload.Schedule, 20)
	for i := 1; i <= 20; i++ {
		start := time.Duration(i-1) * time.Second
		stop := start + 60*time.Second
		restart := stop + 5*time.Second
		schedules[i] = workload.Schedule{
			{Start: start, Stop: stop},
			{Start: restart},
		}
	}
	return Scenario{
		Name:          name,
		Scheme:        scheme,
		Duration:      160 * time.Second,
		Seed:          seed,
		NumFlows:      20,
		Weights:       topology.WeightsFig7(),
		DefaultWeight: 2,
		Schedules:     schedules,
	}
}

// Fig9Scenario returns the Corelite churn scenario.
func Fig9Scenario(seed int64) Scenario {
	return churnScenario(SchemeCorelite, "fig9-corelite-churn", seed)
}

// Fig10Scenario returns the CSFQ churn scenario.
func Fig10Scenario(seed int64) Scenario {
	return churnScenario(SchemeCSFQ, "fig10-csfq-churn", seed)
}

// RunFig9 regenerates Figure 9 (Corelite under churn).
func RunFig9(seed int64) (*Result, error) { return Run(Fig9Scenario(seed)) }

// RunFig10 regenerates Figure 10 (CSFQ under churn).
func RunFig10(seed int64) (*Result, error) { return Run(Fig10Scenario(seed)) }

// FairnessAtScaleScenario returns the at-scale fairness figure: a k=8
// fat-tree (80 switches) carrying 40 flows under a heavy-tailed
// mice/elephants workload where 10% of the flows are unresponsive
// blasters that ignore all feedback. It is the generated-scenario
// counterpart of the paper's unresponsive-source discussion: Corelite's
// FIFO core cannot police the blasts (the responsive flows share the
// residual capacity, nearly loss-free), while CSFQ polices the labeled
// blasts down to their fair share at the cost of sustained drops.
func FairnessAtScaleScenario(scheme Scheme, seed int64) Scenario {
	return Scenario{
		Name:       "fairness-at-scale-" + scheme.String(),
		Scheme:     scheme,
		Duration:   110 * time.Second,
		Seed:       seed,
		EventQueue: "auto",
		Generate: &Generate{
			Topo: topogen.Config{Kind: topogen.KindFatTree, K: 8, Flows: 40},
			Traffic: &trafficgen.Config{
				Kind: trafficgen.KindHeavyTail,
				// 350 pkt/s per blast: below the 500 pkt/s fabric links it
				// crosses, well above any weight-1 fair share on them.
				UnresponsiveFrac: 0.1,
				UnresponsiveRate: 350,
			},
		},
	}
}

// RunFairnessAtScale regenerates the at-scale fairness figure.
func RunFairnessAtScale(scheme Scheme, seed int64) (*Result, error) {
	return Run(FairnessAtScaleScenario(scheme, seed))
}

// ChurnTailScenario returns the convergence-tail figure: a k=4 fat-tree
// with a churning heavy-weight cohort (anti-phase on/off cycling) plus a
// flash crowd arriving together mid-run. The interesting output is the
// allocation trajectory after each membership change — how long the tail
// of each convergence transient is — with the final steady window pinned
// by the fairness residual.
func ChurnTailScenario(scheme Scheme, seed int64) Scenario {
	return Scenario{
		Name:       "churn-tail-" + scheme.String(),
		Scheme:     scheme,
		Duration:   200 * time.Second,
		Seed:       seed,
		EventQueue: "auto",
		Generate: &Generate{
			Topo: topogen.Config{Kind: topogen.KindFatTree, K: 4, Flows: 16},
			// The 100s settle tail is the measured quantity: restarted
			// flows ramp from zero under LIMD's additive increase
			// (~7 pkt/s per second here), so the tail must hold the full
			// reconvergence transient plus the fairness window.
			Traffic: &trafficgen.Config{Kind: trafficgen.KindChurn, Settle: 100 * time.Second},
		},
	}
}

// RunChurnTail regenerates the convergence-tail figure.
func RunChurnTail(scheme Scheme, seed int64) (*Result, error) {
	return Run(ChurnTailScenario(scheme, seed))
}

// AllFigures enumerates the figure scenarios in order — one spec per
// figure of §4, including Figure 4's separately named rerun of the
// Figure 3 simulation (its cumulative-service view), followed by the
// generated at-scale figures.
func AllFigures(seed int64) []Scenario {
	return []Scenario{
		Fig3Scenario(seed),
		Fig4Scenario(seed),
		Fig5Scenario(seed),
		Fig6Scenario(seed),
		Fig7Scenario(seed),
		Fig8Scenario(seed),
		Fig9Scenario(seed),
		Fig10Scenario(seed),
		FairnessAtScaleScenario(SchemeCorelite, seed),
		FairnessAtScaleScenario(SchemeCSFQ, seed),
		ChurnTailScenario(SchemeCorelite, seed),
		ChurnTailScenario(SchemeCSFQ, seed),
	}
}

// FigureFairnessTol maps a figure scenario name to the fairness-residual
// tolerance the invariant checker should use for it. The startup figures
// meet the default 5%: the schemes converge and hold the fair share. The
// longer dynamics/staggered/churn scenarios keep persistent per-flow
// goodput deviations around the fair share — the paper's own evaluation
// judges fairness on allotted rates (which converge tightly, see the
// Jain-index assertions in figures_test.go), while goodput additionally
// carries shaper and queue dynamics. Measured worst residuals at seed 1:
// fig3/4 7.0%, fig5 1.3%, fig6 2.8%, fig7 18.8%, fig8 4.3%, fig9 18.0%,
// fig10 4.8%.
//
// The churn-tail figures measure the reconvergence tail itself, so their
// tolerances are calibrated to the tail each scheme actually leaves after
// the 100s settle window (worst residual across both backends at seed 1):
// Corelite's fluid LIMD ramp is the slow one — restarted flows climb
// additively while the flows holding their excess see no congestion signal
// until the ramp completes (worst 36% on the flow backend; the packet
// backend is clean at 5%) — whereas CSFQ's label-driven policing
// reconverges within 10%. The gap between the two entries is the figure's
// headline result.
func FigureFairnessTol(name string) float64 {
	switch name {
	case "fig3-corelite-dynamics", "fig4-corelite-cumulative":
		return 0.10
	case "fig7-corelite-staggered", "fig9-corelite-churn":
		return 0.25
	case "fig8-csfq-staggered", "fig10-csfq-churn":
		return 0.08
	case "churn-tail-corelite":
		return 0.45
	case "churn-tail-csfq":
		return 0.15
	default:
		return 0.05
	}
}
