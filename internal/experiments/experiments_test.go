package experiments

import (
	"math"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestScenarioValidation(t *testing.T) {
	tests := []struct {
		name string
		sc   Scenario
	}{
		{"no scheme", Scenario{Duration: time.Second, NumFlows: 1}},
		{"no duration", Scenario{Scheme: SchemeCorelite, NumFlows: 1}},
		{"no flows", Scenario{Scheme: SchemeCorelite, Duration: time.Second}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.sc); err == nil {
				t.Error("Run succeeded, want error")
			}
		})
	}
}

func shortDumbbell(scheme Scheme, seed int64) Scenario {
	return Scenario{
		Name:     "short-dumbbell",
		Scheme:   scheme,
		Duration: 30 * time.Second,
		Seed:     seed,
		NumFlows: 2,
		Weights:  map[int]float64{1: 1, 2: 2},
		Dumbbell: true,
	}
}

func TestRunDumbbellCorelite(t *testing.T) {
	res, err := Run(shortDumbbell(SchemeCorelite, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(res.Flows))
	}
	for _, f := range res.Flows {
		if len(f.AllowedRate) != 30 {
			t.Errorf("flow %d has %d allowed-rate samples, want 30", f.Index, len(f.AllowedRate))
		}
		if f.Delivered == 0 {
			t.Errorf("flow %d delivered nothing", f.Index)
		}
	}
	// Expected: 500/3 and 1000/3.
	if e := res.ExpectedFullSet[2]; math.Abs(e-1000.0/3) > 1e-6 {
		t.Errorf("expected[2] = %v, want 333.3", e)
	}
	// After 30s both flows should be in the right neighbourhood.
	f1, f2 := res.Flow(1), res.Flow(2)
	if f1 == nil || f2 == nil {
		t.Fatal("missing flow results")
	}
	r1 := f1.AllowedRate.Final()
	r2 := f2.AllowedRate.Final()
	if r1 < 80 || r1 > 260 {
		t.Errorf("flow 1 final allowed rate = %v, want ~167", r1)
	}
	if r2 < 200 || r2 > 460 {
		t.Errorf("flow 2 final allowed rate = %v, want ~333", r2)
	}
	if j := res.JainIndexAt(29*time.Second, shortDumbbell(SchemeCorelite, 1)); j < 0.9 {
		t.Errorf("Jain index at end = %v, want > 0.9", j)
	}
}

func TestRunDumbbellCSFQ(t *testing.T) {
	res, err := Run(shortDumbbell(SchemeCSFQ, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	total := res.Flow(1).AllowedRate.Final() + res.Flow(2).AllowedRate.Final()
	if total < 350 || total > 650 {
		t.Errorf("aggregate final rate = %v, want ~500", total)
	}
	if res.TotalLosses == 0 {
		t.Error("CSFQ run had no losses; expected loss-driven adaptation")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(shortDumbbell(SchemeCorelite, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shortDumbbell(SchemeCorelite, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Events, b.Events)
	}
	for i := range a.Flows {
		fa, fb := a.Flows[i], b.Flows[i]
		if fa.Delivered != fb.Delivered || fa.Losses != fb.Losses {
			t.Fatalf("flow %d totals differ", fa.Index)
		}
		for j := range fa.AllowedRate {
			if fa.AllowedRate[j] != fb.AllowedRate[j] {
				t.Fatalf("flow %d allowed-rate sample %d differs", fa.Index, j)
			}
		}
	}
	c, err := Run(shortDumbbell(SchemeCorelite, 8))
	if err != nil {
		t.Fatal(err)
	}
	if c.Events == a.Events {
		t.Log("different seeds produced identical event counts (possible but unlikely)")
	}
}

func TestExpectedRatesAtPhases(t *testing.T) {
	sc := Fig3Scenario(1)
	// Phase 1 (t=100s): flows 1,9,10,11,16 inactive -> 33.33 per unit.
	p1, err := ExpectedRatesAt(sc, 100*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1[5]-100) > 0.01 {
		t.Errorf("phase1 flow5 = %v, want 100", p1[5])
	}
	if _, ok := p1[1]; ok {
		t.Error("phase1 includes inactive flow 1")
	}
	// Phase 2 (t=300s): all 20 -> 25 per unit.
	p2, err := ExpectedRatesAt(sc, 300*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2[1]-25) > 0.01 {
		t.Errorf("phase2 flow1 = %v, want 25", p2[1])
	}
	if math.Abs(p2[5]-75) > 0.01 {
		t.Errorf("phase2 flow5 = %v, want 75", p2[5])
	}
	// After 750s nothing is active.
	p3, err := ExpectedRatesAt(sc, 770*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(p3) != 0 {
		t.Errorf("phase3 has %d active flows, want 0", len(p3))
	}
}

func TestScheduleOf(t *testing.T) {
	sc := Scenario{Schedules: map[int]workload.Schedule{1: workload.Window(time.Second, 2*time.Second)}}
	if !scheduleOf(sc, 2).ActiveAt(0, time.Minute) {
		t.Error("default schedule should be always-active")
	}
	if scheduleOf(sc, 1).ActiveAt(0, time.Minute) {
		t.Error("explicit schedule ignored")
	}
}

func TestFigureScenarioShapes(t *testing.T) {
	f3 := Fig3Scenario(1)
	if f3.NumFlows != 20 || f3.Duration != 800*time.Second || f3.Scheme != SchemeCorelite {
		t.Errorf("Fig3Scenario misconfigured: %+v", f3)
	}
	if !f3.Schedules[9].ActiveAt(300*time.Second, f3.Duration) {
		t.Error("fig3 flow 9 should be active at 300s")
	}
	if f3.Schedules[9].ActiveAt(100*time.Second, f3.Duration) {
		t.Error("fig3 flow 9 should be inactive at 100s")
	}
	if f3.Schedules[2].ActiveAt(760*time.Second, f3.Duration) {
		t.Error("fig3 flow 2 should stop at 750s")
	}

	f5, f6 := Fig5Scenario(1), Fig6Scenario(1)
	if f5.Scheme != SchemeCorelite || f6.Scheme != SchemeCSFQ {
		t.Error("fig5/6 schemes wrong")
	}
	if f5.NumFlows != 10 || f5.Weights[9] != 5 {
		t.Errorf("fig5 flows/weights wrong: %+v", f5.Weights)
	}

	f9 := Fig9Scenario(1)
	s3 := f9.Schedules[3] // starts at 2s, stops at 62s, restarts at 67s
	if !s3.ActiveAt(10*time.Second, f9.Duration) ||
		s3.ActiveAt(63*time.Second, f9.Duration) ||
		!s3.ActiveAt(70*time.Second, f9.Duration) {
		t.Errorf("fig9 schedule wrong: %+v", s3)
	}
	if got := len(AllFigures(1)); got != 12 {
		t.Errorf("AllFigures returned %d scenarios, want 12 (Figures 3-10 plus the four generated at-scale figures)", got)
	}
	if AllFigures(1)[1].Name != Fig4Scenario(1).Name {
		t.Errorf("AllFigures missing the Figure 4 spec")
	}
}

func TestResultHelpers(t *testing.T) {
	res, err := Run(shortDumbbell(SchemeCorelite, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow(99) != nil {
		t.Error("Flow(99) returned a result")
	}
	if got := res.Flow(1); got == nil || got.Index != 1 {
		t.Error("Flow(1) lookup broken")
	}
	// Jain before any sample exists is 0.
	if j := res.JainIndexAt(-time.Second, shortDumbbell(SchemeCorelite, 3)); j != 0 {
		t.Errorf("JainIndexAt before start = %v, want 0", j)
	}
	if res.Scheme.String() != "corelite" || SchemeCSFQ.String() != "csfq" {
		t.Error("Scheme strings wrong")
	}
	if Scheme(9).String() != "Scheme(9)" {
		t.Error("unknown scheme string wrong")
	}
}

func TestTransportString(t *testing.T) {
	// Transports are plain ints with no Stringer; just pin the values so
	// the public API stays stable.
	if TransportBacklogged != 0 || TransportTCP != 1 {
		t.Error("transport constants changed")
	}
}

func TestParseGenerate(t *testing.T) {
	if g, err := ParseGenerate("", ""); g != nil || err != nil {
		t.Errorf("empty specs: got %+v, %v; want nil, nil", g, err)
	}
	if _, err := ParseGenerate("", "heavytail"); err == nil {
		t.Error("traffic without a generated topology accepted")
	}
	g, err := ParseGenerate("fattree:k=4,flows=8", "")
	if err != nil {
		t.Fatalf("topo-only: %v", err)
	}
	if g == nil || g.Topo.K != 4 || g.Traffic != nil {
		t.Errorf("topo-only generate = %+v", g)
	}
	g, err = ParseGenerate("nclouds:n=3,through=2", "churn:period=10s")
	if err != nil {
		t.Fatalf("topo+traffic: %v", err)
	}
	if g.Topo.Clouds != 3 || g.Traffic == nil || g.Traffic.ChurnPeriod != 10*time.Second {
		t.Errorf("topo+traffic generate = %+v", g)
	}
	if _, err := ParseGenerate("torus:k=4", ""); err == nil {
		t.Error("bad topology spec accepted")
	}
	if _, err := ParseGenerate("mesh:nodes=6", "tsunami:x=1"); err == nil {
		t.Error("bad traffic spec accepted")
	}
}
