package csfq

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
)

func TestRouterRelabelsToAlpha(t *testing.T) {
	// After α converges on a congested link, accepted packets with labels
	// above α must leave relabelled to α (needed for correct treatment at
	// downstream congested links).
	s := sim.NewScheduler()
	net := netem.New(s)
	for _, n := range []string{"R", "D"} {
		if _, err := net.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.AddLink("R", "D", netem.LinkConfig{RateBps: 4e6, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := net.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	router := NewRouter(net, net.Node("R"), DefaultRouterConfig(), sim.NewRNG(3))
	var labels []float64
	net.Node("D").SetApp(appFunc(func(p *packet.Packet) { labels = append(labels, p.Label) }))

	// Overload: two flows at 400 pkt/s each (labels 400) on a 500 pkt/s
	// link.
	emit := func(edge string) {
		var seq int64
		var fire func()
		fire = func() {
			p := packet.New(packet.FlowID{Edge: edge, Local: 0}, "D", seq, s.Now())
			p.Label = 400
			seq++
			net.Node("R").Inject(p)
			if s.Now() < 10*time.Second {
				s.MustAfter(2500*time.Microsecond, fire)
			}
		}
		s.MustAt(0, fire)
	}
	emit("a")
	emit("b")
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if router.Stats().Relabelled == 0 {
		t.Fatal("no packets relabelled under overload")
	}
	// Labels in the steady-state tail should be clamped near α (~250).
	tail := labels[len(labels)-500:]
	maxLabel := 0.0
	for _, l := range tail {
		if l > maxLabel {
			maxLabel = l
		}
	}
	if maxLabel > 400 {
		t.Errorf("tail label %v exceeds the original label", maxLabel)
	}
	if maxLabel > 350 {
		t.Errorf("tail labels not clamped toward α (~250): max %v", maxLabel)
	}
}

func TestAlphaTracksUncongestedMaxLabel(t *testing.T) {
	s := sim.NewScheduler()
	net := netem.New(s)
	for _, n := range []string{"R", "D"} {
		if _, err := net.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	link, err := net.AddLink("R", "D", netem.LinkConfig{RateBps: 4e6, Delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	router := NewRouter(net, net.Node("R"), DefaultRouterConfig(), sim.NewRNG(3))
	net.Node("D").SetApp(appFunc(func(*packet.Packet) {}))

	// Congest briefly so α initializes, then go quiet at 100 pkt/s with
	// label 100: α must relax to the observed max label.
	var seq int64
	inject := func(label float64) {
		p := packet.New(packet.FlowID{Edge: "a", Local: 0}, "D", seq, s.Now())
		p.Label = label
		seq++
		net.Node("R").Inject(p)
	}
	var burst func()
	burst = func() {
		inject(600)
		if s.Now() < 3*time.Second {
			s.MustAfter(1600*time.Microsecond, burst) // 625 pkt/s: congested
		}
	}
	s.MustAt(0, burst)
	var calm func()
	calm = func() {
		inject(100)
		if s.Now() < 10*time.Second {
			s.MustAfter(10*time.Millisecond, calm) // 100 pkt/s
		}
	}
	s.MustAt(3*time.Second+time.Millisecond, calm)
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	alpha := router.Alpha(link)
	if math.Abs(alpha-100) > 15 {
		t.Errorf("α after calm period = %v, want ~100 (max observed label)", alpha)
	}
}

// TestEwmaRateProperty: for any positive constant gap, the estimator
// converges to 1/gap within a few averaging windows.
func TestEwmaRateProperty(t *testing.T) {
	f := func(gapMsRaw uint8) bool {
		gapMs := int(gapMsRaw%50) + 1
		gap := time.Duration(gapMs) * time.Millisecond
		k := 100 * time.Millisecond
		est := 0.0
		now := time.Duration(0)
		last := time.Duration(0)
		has := false
		for i := 0; i < 2000; i++ {
			est = ewmaRate(est, last, now, k, has)
			last = now
			has = true
			now += gap
		}
		want := 1 / gap.Seconds()
		return math.Abs(est-want)/want < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOverflowDecaysAlpha(t *testing.T) {
	s := sim.NewScheduler()
	net := netem.New(s)
	for _, n := range []string{"R", "D"} {
		if _, err := net.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	// Tiny buffer to force overflows.
	link, err := net.AddLink("R", "D", netem.LinkConfig{
		RateBps: 4e6, Delay: time.Millisecond, Queue: netem.NewDropTail(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	router := NewRouter(net, net.Node("R"), DefaultRouterConfig(), sim.NewRNG(3))
	net.Node("D").SetApp(appFunc(func(*packet.Packet) {}))

	// Mislabelled aggressive traffic: labels say 10 (way under fair
	// share) so the probabilistic dropper passes everything; only buffer
	// overflows can push back, and each must shave α.
	var seq int64
	var alphaAfterCongestion float64
	var fire func()
	fire = func() {
		p := packet.New(packet.FlowID{Edge: "liar", Local: 0}, "D", seq, s.Now())
		p.Label = 10
		seq++
		net.Node("R").Inject(p)
		if s.Now() == 5*time.Second {
			alphaAfterCongestion = router.Alpha(link)
		}
		if s.Now() < 10*time.Second {
			s.MustAfter(time.Millisecond, fire) // 1000 pkt/s into 500
		}
	}
	s.MustAt(0, fire)
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if alphaAfterCongestion == 0 {
		t.Skip("α never initialized; overflow decay unobservable")
	}
	if router.Alpha(link) >= alphaAfterCongestion {
		t.Errorf("α did not decay under persistent overflow: %v -> %v",
			alphaAfterCongestion, router.Alpha(link))
	}
}
