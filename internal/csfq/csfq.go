// Package csfq implements weighted Core-Stateless Fair Queueing (Stoica,
// Shenker, Zhang — SIGCOMM'98), the baseline the paper compares Corelite
// against (§4.2–4.3).
//
// Edge routers estimate each flow's rate with exponential averaging and
// label every packet with the normalized rate r/w. Core routers estimate a
// per-link fair share α and drop arriving packets with probability
// max(0, 1 − α/label), relabelling accepted packets with min(label, α).
// Sources react to losses with the same slow-start + linear-increase /
// loss-proportional-decrease agents used for Corelite (package adapt), as
// in the paper's evaluation.
package csfq

import (
	"fmt"
	"math"
	"time"

	"repro/internal/adapt"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

// EdgeConfig parameterizes a CSFQ edge router.
type EdgeConfig struct {
	// Epoch is the adaptation period of the source agent (100 ms).
	Epoch time.Duration
	// K is the averaging constant for the per-flow rate estimate
	// (paper: 100 ms).
	K time.Duration
	// Adapt parameterizes the rate controller.
	Adapt adapt.Config
	// PhaseOffset delays the first epoch tick; zero derives a
	// deterministic per-node phase so edges do not adapt in lock-step
	// (see workload.EpochPhase).
	PhaseOffset time.Duration
}

// DefaultEdgeConfig returns the paper's CSFQ edge settings.
func DefaultEdgeConfig() EdgeConfig {
	return EdgeConfig{
		Epoch: 100 * time.Millisecond,
		K:     100 * time.Millisecond,
		Adapt: adapt.DefaultConfig(),
	}
}

// Edge is a CSFQ ingress edge: it shapes flows to the agent rate, estimates
// each flow's rate by exponential averaging, and labels every packet with
// the flow's normalized rate estimate.
type Edge struct {
	net  *netem.Network
	node *netem.Node
	cfg  EdgeConfig

	flows  []*edgeFlow
	ticker *sim.Event
}

type edgeFlow struct {
	id     packet.FlowID
	weight float64
	src    *workload.Source
	ctrl   *adapt.Controller

	est      float64 // exponential average of the emission rate, pkt/s
	lastEmit time.Duration
	hasEmit  bool
	losses   int // this epoch
}

// NewEdge attaches a CSFQ edge to the ingress node.
func NewEdge(net *netem.Network, node *netem.Node, cfg EdgeConfig) *Edge {
	if cfg.Epoch <= 0 {
		cfg.Epoch = 100 * time.Millisecond
	}
	if cfg.K <= 0 {
		cfg.K = 100 * time.Millisecond
	}
	if cfg.Adapt == (adapt.Config{}) {
		cfg.Adapt = adapt.DefaultConfig()
	}
	return &Edge{net: net, node: node, cfg: cfg}
}

// Node reports the ingress node this edge controls.
func (e *Edge) Node() *netem.Node { return e.node }

// AddFlow registers a flow toward dst with the given rate weight.
func (e *Edge) AddFlow(dst string, weight float64) (int, error) {
	if weight <= 0 {
		return 0, fmt.Errorf("csfq: flow weight %v must be positive", weight)
	}
	local := len(e.flows)
	id := packet.FlowID{Edge: e.node.Name(), Local: local}
	f := &edgeFlow{
		id:     id,
		weight: weight,
		ctrl:   adapt.NewController(e.cfg.Adapt),
	}
	f.src = workload.NewSource(e.net.Scheduler(), workload.SourceConfig{
		Flow:   id,
		Dst:    dst,
		Inject: e.node.Inject,
		Pool:   e.net.PacketPool(),
	})
	f.src.Decorate = func(p *packet.Packet) { e.label(f, p) }
	e.flows = append(e.flows, f)
	e.registerFlowObs(f)
	return local, nil
}

// registerFlowObs publishes a new flow's agent rate and adaptation phase as
// gauges and wires its controller's phase transitions into the control
// event stream. No-op when the network has no registry attached.
func (e *Edge) registerFlowObs(f *edgeFlow) {
	reg := e.net.Obs()
	if !reg.Enabled() {
		return
	}
	id := f.id.String()
	reg.GaugeFunc(obs.PrefixRate+id, f.ctrl.Rate)
	reg.GaugeFunc(obs.PrefixPhase+id, func() float64 { return float64(f.ctrl.Phase()) })
	node := e.node.Name()
	f.ctrl.Hook = func(oldPhase, newPhase adapt.Phase, oldRate, newRate float64) {
		reg.Emit(obs.ControlEvent{
			At: e.net.Now(), Kind: obs.KindPhaseChange,
			Node: node, Flow: id,
			Old: oldRate, New: newRate,
			Detail: phaseName(oldPhase) + "->" + phaseName(newPhase),
		})
	}
}

// phaseName renders an adapt.Phase for event details, naming the
// not-started zero phase "stopped".
func phaseName(p adapt.Phase) string {
	if p == 0 {
		return "stopped"
	}
	return p.String()
}

// label stamps a packet with the flow's current normalized rate estimate,
// updating the exponential average from the inter-emission gap:
// r ← (1 − e^(−T/K))·(1/T) + e^(−T/K)·r.
func (e *Edge) label(f *edgeFlow, p *packet.Packet) {
	now := e.net.Now()
	if f.hasEmit {
		gap := (now - f.lastEmit).Seconds()
		if gap <= 0 {
			gap = 1e-9
		}
		w := math.Exp(-gap / e.cfg.K.Seconds())
		f.est = (1-w)*(1/gap) + w*f.est
	}
	f.lastEmit = now
	f.hasEmit = true
	p.Label = f.est / f.weight
}

func (e *Edge) flow(local int) (*edgeFlow, error) {
	if local < 0 || local >= len(e.flows) {
		return nil, fmt.Errorf("csfq: unknown flow %d on edge %s", local, e.node.Name())
	}
	return e.flows[local], nil
}

// StartFlow activates a flow in slow-start.
func (e *Edge) StartFlow(local int) error {
	f, err := e.flow(local)
	if err != nil {
		return err
	}
	now := e.net.Now()
	f.ctrl.Start(now)
	f.est = f.ctrl.Rate()
	f.hasEmit = false
	f.losses = 0
	f.src.Start(f.ctrl.Rate())
	return nil
}

// StopFlow deactivates a flow.
func (e *Edge) StopFlow(local int) error {
	f, err := e.flow(local)
	if err != nil {
		return err
	}
	f.src.Stop()
	f.ctrl.Stop()
	f.losses = 0
	return nil
}

// FlowID reports the network-wide id of a local flow.
func (e *Edge) FlowID(local int) (packet.FlowID, error) {
	f, err := e.flow(local)
	if err != nil {
		return packet.FlowID{}, err
	}
	return f.id, nil
}

// AllowedRate reports the agent's current sending rate for the flow.
func (e *Edge) AllowedRate(local int) (float64, error) {
	f, err := e.flow(local)
	if err != nil {
		return 0, err
	}
	return f.ctrl.Rate(), nil
}

// Weight reports the flow's rate weight.
func (e *Edge) Weight(local int) (float64, error) {
	f, err := e.flow(local)
	if err != nil {
		return 0, err
	}
	return f.weight, nil
}

// HandleLoss records one lost packet for the flow (the CSFQ congestion
// indication). The experiment harness delivers drops through the control
// plane with the drop-point-to-edge latency.
func (e *Edge) HandleLoss(local int) {
	f, err := e.flow(local)
	if err != nil {
		return
	}
	if !f.src.Active() {
		return
	}
	f.losses++
}

// Start begins the edge's periodic epoch processing. The first tick fires
// after the edge's phase offset so that edges across the cloud do not adapt
// in lock-step.
func (e *Edge) Start() {
	if e.ticker != nil {
		return
	}
	phase := workload.EpochPhase(e.cfg.PhaseOffset, e.cfg.Epoch, e.node.Name())
	e.ticker = e.net.Scheduler().MustAfter(phase, func() {
		e.onEpoch()
		e.scheduleEpoch()
	})
}

// Stop cancels epoch processing.
func (e *Edge) Stop() {
	if e.ticker != nil {
		e.ticker.Cancel()
		e.ticker = nil
	}
}

func (e *Edge) scheduleEpoch() {
	e.ticker = e.net.Scheduler().MustAfter(e.cfg.Epoch, func() {
		e.onEpoch()
		e.scheduleEpoch()
	})
}

func (e *Edge) onEpoch() {
	e.net.Scheduler().MarkHandler(sim.KindControl)
	now := e.net.Now()
	for _, f := range e.flows {
		if !f.src.Active() {
			continue
		}
		losses := f.losses
		f.losses = 0
		rate := f.ctrl.OnEpoch(now, float64(losses))
		f.src.SetRate(rate)
	}
}
