package csfq

import (
	"math"
	"time"

	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

// RouterConfig parameterizes a CSFQ core router.
type RouterConfig struct {
	// K is the averaging constant for the per-link arrival/acceptance
	// rate estimates (paper: 100 ms).
	K time.Duration
	// KLink is the window length for fair-share (α) updates (the paper's
	// K_link, 100 ms).
	KLink time.Duration
	// PacketSizeBytes converts link bandwidth to packets/second (1000).
	PacketSizeBytes int
	// OverflowDecay shrinks α by this fraction on every buffer overflow,
	// as in Stoica's implementation (default 0.01).
	OverflowDecay float64
}

// DefaultRouterConfig returns the paper's CSFQ settings (K = K_link =
// 100 ms).
func DefaultRouterConfig() RouterConfig {
	return RouterConfig{
		K:               100 * time.Millisecond,
		KLink:           100 * time.Millisecond,
		PacketSizeBytes: packet.DefaultSizeBytes,
		OverflowDecay:   0.01,
	}
}

// RouterStats aggregates counters over a router's links.
type RouterStats struct {
	// Arrived counts data packets offered to the router's links.
	Arrived int64
	// DroppedEarly counts probabilistic (fair-share) drops.
	DroppedEarly int64
	// Relabelled counts packets whose label was lowered to α.
	Relabelled int64
}

// Router is a weighted CSFQ core router: per-link fair-share estimation and
// probabilistic dropping, no per-flow state.
type Router struct {
	net  *netem.Network
	node *netem.Node
	cfg  RouterConfig
	rng  *sim.RNG

	links map[*netem.Link]*linkState
	stats RouterStats

	// Observability (all inert when the network has no registry attached).
	obs             *obs.Registry
	ctrArrived      *obs.Counter
	ctrDroppedEarly *obs.Counter
	ctrRelabelled   *obs.Counter
}

var _ netem.Forwarder = (*Router)(nil)

type linkState struct {
	name     string
	capacity float64 // pkt/s

	// Exponentially averaged arrival (A) and acceptance (F) rates.
	arrRate  float64
	accRate  float64
	lastArr  time.Duration
	hasArr   bool
	lastAcc  time.Duration
	hasAcc   bool
	alpha    float64
	congest  bool
	winStart time.Duration
	tmpAlpha float64 // max label in the current uncongested window
}

// NewRouter attaches CSFQ behaviour to every outgoing link of node.
func NewRouter(net *netem.Network, node *netem.Node, cfg RouterConfig, rng *sim.RNG) *Router {
	if cfg.K <= 0 {
		cfg.K = 100 * time.Millisecond
	}
	if cfg.KLink <= 0 {
		cfg.KLink = 100 * time.Millisecond
	}
	if cfg.PacketSizeBytes <= 0 {
		cfg.PacketSizeBytes = packet.DefaultSizeBytes
	}
	if cfg.OverflowDecay <= 0 {
		cfg.OverflowDecay = 0.01
	}
	r := &Router{
		net:   net,
		node:  node,
		cfg:   cfg,
		rng:   rng,
		links: make(map[*netem.Link]*linkState),
	}
	r.obs = net.Obs()
	r.ctrArrived = r.obs.Counter("csfq/" + node.Name() + "/arrived")
	r.ctrDroppedEarly = r.obs.Counter("csfq/" + node.Name() + "/dropped-early")
	r.ctrRelabelled = r.obs.Counter("csfq/" + node.Name() + "/relabelled")
	for _, l := range node.Links() {
		r.addLink(l)
	}
	node.SetForwarder(r)
	// Buffer overflows slightly deflate α (the estimated fair share was
	// too high).
	net.OnDrop(func(d netem.Drop) {
		if d.Reason != netem.DropOverflow || d.Link == nil {
			return
		}
		if st, ok := r.links[d.Link]; ok && st.alpha > 0 {
			old := st.alpha
			st.alpha *= 1 - r.cfg.OverflowDecay
			r.emitAlpha(st, d.At, old, "overflow-decay")
		}
	})
	return r
}

// addLink adopts one outgoing link, publishing its fair-share estimate as
// the "alpha/<link>" gauge.
func (r *Router) addLink(l *netem.Link) *linkState {
	st := &linkState{name: l.Name(), capacity: l.PacketsPerSecond(r.cfg.PacketSizeBytes)}
	r.links[l] = st
	r.obs.GaugeFunc(obs.PrefixAlpha+st.name, func() float64 { return st.alpha })
	return st
}

// emitAlpha records a fair-share re-estimation in the control event stream.
func (r *Router) emitAlpha(st *linkState, at time.Duration, old float64, rule string) {
	if !r.obs.Enabled() {
		return
	}
	r.obs.Emit(obs.ControlEvent{
		At: at, Kind: obs.KindAlphaUpdate,
		Node: r.node.Name(), Link: st.name,
		Old: old, New: st.alpha, Detail: rule,
	})
}

// Stats returns a copy of the router's counters.
func (r *Router) Stats() RouterStats { return r.stats }

// Alpha reports the current fair-share estimate for an outgoing link
// (packets/second normalized rate), for tests and instrumentation.
func (r *Router) Alpha(l *netem.Link) float64 {
	if st, ok := r.links[l]; ok {
		return st.alpha
	}
	return 0
}

// OnForward implements netem.Forwarder: the CSFQ acceptance test.
func (r *Router) OnForward(p *packet.Packet, out *netem.Link) bool {
	st, ok := r.links[out]
	if !ok {
		// Link added after construction; adopt it.
		st = r.addLink(out)
	}
	now := r.net.Now()
	r.stats.Arrived++
	r.ctrArrived.Inc()

	st.arrRate = ewmaRate(st.arrRate, st.lastArr, now, r.cfg.K, st.hasArr)
	st.lastArr = now
	st.hasArr = true

	// Drop probability max(0, 1 − α/label); α == 0 means the link has
	// never been congested, so everything is accepted.
	drop := false
	if st.alpha > 0 && p.Label > 0 {
		prob := 1 - st.alpha/p.Label
		if prob > 0 {
			drop = r.rng.Bernoulli(prob)
		}
	}

	r.updateAlpha(st, now, p.Label)

	if drop {
		r.stats.DroppedEarly++
		r.ctrDroppedEarly.Inc()
		return false
	}
	st.accRate = ewmaRate(st.accRate, st.lastAcc, now, r.cfg.K, st.hasAcc)
	st.lastAcc = now
	st.hasAcc = true
	if st.alpha > 0 && p.Label > st.alpha {
		p.Label = st.alpha
		r.stats.Relabelled++
		r.ctrRelabelled.Inc()
	}
	return true
}

// updateAlpha runs the fair-share estimation state machine of the CSFQ
// paper: under sustained congestion (A ≥ C for K_link) update
// α ← α·C/F; after an uncongested window set α to the largest label seen.
func (r *Router) updateAlpha(st *linkState, now time.Duration, label float64) {
	congested := st.arrRate >= st.capacity
	if congested {
		if !st.congest {
			st.congest = true
			st.winStart = now
			if st.alpha == 0 {
				// First congestion ever: seed α with the largest label
				// observed so far (Stoica's initialization).
				if st.tmpAlpha > 0 {
					st.alpha = st.tmpAlpha
				} else if label > 0 {
					st.alpha = label
				}
				if st.alpha > 0 {
					r.emitAlpha(st, now, 0, "seed")
				}
			}
		} else if now-st.winStart >= r.cfg.KLink {
			if st.accRate > 0 && st.alpha > 0 {
				old := st.alpha
				st.alpha *= st.capacity / st.accRate
				r.emitAlpha(st, now, old, "congested-window")
			}
			st.winStart = now
		}
		return
	}
	if st.congest {
		st.congest = false
		st.winStart = now
		st.tmpAlpha = 0
		return
	}
	if label > st.tmpAlpha {
		st.tmpAlpha = label
	}
	if now-st.winStart >= r.cfg.KLink {
		if st.tmpAlpha > 0 {
			old := st.alpha
			st.alpha = st.tmpAlpha
			if st.alpha != old {
				r.emitAlpha(st, now, old, "uncongested-window")
			}
		}
		st.winStart = now
		st.tmpAlpha = 0
	}
}

// ewmaRate folds an arrival at time now into an exponentially averaged rate
// estimate: r ← (1 − e^(−T/K))·(1/T) + e^(−T/K)·r.
func ewmaRate(est float64, last, now time.Duration, k time.Duration, has bool) float64 {
	if !has {
		return est
	}
	gap := (now - last).Seconds()
	if gap <= 0 {
		gap = 1e-9
	}
	w := math.Exp(-gap / k.Seconds())
	return (1-w)*(1/gap) + w*est
}
