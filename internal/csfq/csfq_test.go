package csfq

import (
	"math"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestEwmaRateConverges(t *testing.T) {
	// Packets arriving every 10 ms should converge to ~100 pkt/s.
	k := 100 * time.Millisecond
	est := 0.0
	last := time.Duration(0)
	has := false
	now := time.Duration(0)
	for i := 0; i < 500; i++ {
		est = ewmaRate(est, last, now, k, has)
		last = now
		has = true
		now += 10 * time.Millisecond
	}
	if math.Abs(est-100) > 5 {
		t.Errorf("ewma estimate = %v, want ~100", est)
	}
}

func TestEdgeLabelsNormalizedRate(t *testing.T) {
	s := sim.NewScheduler()
	net := netem.New(s)
	for _, n := range []string{"E", "D"} {
		if _, err := net.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.AddLink("E", "D", netem.LinkConfig{RateBps: 1e9, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := net.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	var labels []float64
	net.Node("D").SetApp(appFunc(func(p *packet.Packet) { labels = append(labels, p.Label) }))

	cfg := DefaultEdgeConfig()
	cfg.Adapt.InitialRate = 100 // steady emission at 100 pkt/s
	cfg.Adapt.SSThresh = 1      // avoid doubling during the test
	edge := NewEdge(net, net.Node("E"), cfg)
	local, err := edge.AddFlow("D", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := edge.StartFlow(local); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(labels) < 100 {
		t.Fatalf("only %d packets delivered", len(labels))
	}
	// After the estimator warms up, labels should approach 100/4 = 25.
	got := labels[len(labels)-1]
	if math.Abs(got-25) > 3 {
		t.Errorf("final label = %v, want ~25 (rate/weight)", got)
	}
}

type appFunc func(*packet.Packet)

func (f appFunc) Receive(p *packet.Packet) { f(p) }

func TestEdgeLossDrivenAdaptation(t *testing.T) {
	s := sim.NewScheduler()
	net := netem.New(s)
	for _, n := range []string{"E", "D"} {
		if _, err := net.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.AddLink("E", "D", netem.LinkConfig{RateBps: 1e9, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := net.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	edge := NewEdge(net, net.Node("E"), DefaultEdgeConfig())
	local, err := edge.AddFlow("D", 1)
	if err != nil {
		t.Fatal(err)
	}
	edge.Start()
	defer edge.Stop()
	if err := edge.StartFlow(local); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(8 * time.Second); err != nil { // reach linear phase
		t.Fatal(err)
	}
	before, _ := edge.AllowedRate(local)
	for i := 0; i < 4; i++ {
		edge.HandleLoss(local)
	}
	if err := s.Run(s.Now() + 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	after, _ := edge.AllowedRate(local)
	if want := before - 4; after != want {
		t.Errorf("rate after 4 losses = %v, want %v", after, want)
	}
}

func TestEdgeValidation(t *testing.T) {
	s := sim.NewScheduler()
	net := netem.New(s)
	if _, err := net.AddNode("E"); err != nil {
		t.Fatal(err)
	}
	edge := NewEdge(net, net.Node("E"), DefaultEdgeConfig())
	if _, err := edge.AddFlow("D", -1); err == nil {
		t.Error("negative weight accepted")
	}
	if err := edge.StartFlow(7); err == nil {
		t.Error("StartFlow for unknown flow succeeded")
	}
	if _, err := edge.FlowID(0); err == nil {
		t.Error("FlowID for unknown flow succeeded")
	}
}

func TestRouterDropsAboveFairShare(t *testing.T) {
	// Feed a link its capacity from a fair flow and 3x the fair share
	// from a hog; after α converges the hog must see drops and the fair
	// flow almost none.
	s := sim.NewScheduler()
	net := netem.New(s)
	for _, n := range []string{"R", "D"} {
		if _, err := net.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	// 500 pkt/s bottleneck.
	link, err := net.AddLink("R", "D", netem.LinkConfig{RateBps: 4e6, Delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	router := NewRouter(net, net.Node("R"), DefaultRouterConfig(), sim.NewRNG(11))

	received := map[string]int{}
	net.Node("D").SetApp(appFunc(func(p *packet.Packet) { received[p.Flow.Edge]++ }))
	var drops int
	var hogDrops int
	net.OnDrop(func(d netem.Drop) {
		drops++
		if d.Packet.Flow.Edge == "hog" {
			hogDrops++
		}
	})

	// Emit for 10 seconds: fair flow at 200 pkt/s (label 200), hog at 600
	// pkt/s (label 600). Total 800 > 500 capacity.
	inject := func(edge string, rate float64, label float64) {
		gap := time.Duration(float64(time.Second) / rate)
		var emit func()
		seq := int64(0)
		emit = func() {
			p := packet.New(packet.FlowID{Edge: edge, Local: 0}, "D", seq, s.Now())
			p.Label = label
			seq++
			net.Node("R").Inject(p)
			if s.Now() < 10*time.Second {
				s.MustAfter(gap, emit)
			}
		}
		s.MustAt(0, emit)
	}
	inject("fair", 200, 200)
	inject("hog", 600, 600)
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	if drops == 0 {
		t.Fatal("no drops under 1.6x overload")
	}
	if float64(hogDrops)/float64(drops) < 0.8 {
		t.Errorf("hog took %d of %d drops; want the vast majority", hogDrops, drops)
	}
	// α should settle near the weighted fair share: capacity 500 split so
	// that fair flow (≤ its share) passes and hog is clipped: α ≈ 300.
	alpha := router.Alpha(link)
	if alpha < 200 || alpha > 420 {
		t.Errorf("α = %v, want ~300", alpha)
	}
	// Delivered rates: fair ≈ 200·10 = 2000 packets, hog clipped to
	// ~α·10.
	if received["fair"] < 1700 {
		t.Errorf("fair flow delivered %d, want ~2000 (should not be throttled)", received["fair"])
	}
	hogShare := float64(received["hog"]) / 10
	if hogShare < 200 || hogShare > 420 {
		t.Errorf("hog delivered rate = %v pkt/s, want ~α (~300)", hogShare)
	}
	if router.Stats().DroppedEarly == 0 {
		t.Error("no early drops recorded in stats")
	}
}

func TestRouterUncongestedNeverDrops(t *testing.T) {
	s := sim.NewScheduler()
	net := netem.New(s)
	for _, n := range []string{"R", "D"} {
		if _, err := net.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.AddLink("R", "D", netem.LinkConfig{RateBps: 4e6, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := net.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	NewRouter(net, net.Node("R"), DefaultRouterConfig(), sim.NewRNG(11))
	var drops int
	net.OnDrop(func(netem.Drop) { drops++ })
	count := 0
	net.Node("D").SetApp(appFunc(func(*packet.Packet) { count++ }))

	// 100 pkt/s on a 500 pkt/s link, huge label (mislabelled flow): the
	// link is uncongested, so nothing may be dropped.
	var emit func()
	seq := int64(0)
	emit = func() {
		p := packet.New(packet.FlowID{Edge: "e", Local: 0}, "D", seq, s.Now())
		p.Label = 10000
		seq++
		net.Node("R").Inject(p)
		if s.Now() < 5*time.Second {
			s.MustAfter(10*time.Millisecond, emit)
		}
	}
	s.MustAt(0, emit)
	if err := s.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if drops != 0 {
		t.Errorf("%d drops on an uncongested link", drops)
	}
	if count == 0 {
		t.Error("nothing delivered")
	}
}

// TestDumbbellWeightedConvergenceCSFQ mirrors the Corelite integration
// test: two flows with weights 1 and 2 must converge near 167/333 pkt/s in
// steady state (the paper finds CSFQ fair in steady state, §4.2).
func TestDumbbellWeightedConvergenceCSFQ(t *testing.T) {
	s := sim.NewScheduler()
	weights := map[int]float64{1: 1, 2: 2}
	cloud, err := topology.Dumbbell(s, 2, weights, topology.Options{})
	if err != nil {
		t.Fatalf("Dumbbell: %v", err)
	}
	net := cloud.Net

	rec := metrics.NewFlowRecorder(time.Second)
	edges := make(map[string]*Edge)
	locals := make(map[int]int)
	flowEdges := make(map[int]*Edge)
	for _, pl := range cloud.Placements {
		e := NewEdge(net, net.Node(pl.Ingress), DefaultEdgeConfig())
		local, err := e.AddFlow(pl.Egress, pl.Weight)
		if err != nil {
			t.Fatal(err)
		}
		edges[pl.Ingress] = e
		locals[pl.Index] = local
		flowEdges[pl.Index] = e
		net.Node(pl.Egress).SetApp(appFunc(func(p *packet.Packet) { rec.Deliver(p.Flow, s.Now()) }))
		e.Start()
	}
	rng := sim.NewRNG(42)
	for _, name := range []string{"A", "B"} {
		NewRouter(net, net.Node(name), DefaultRouterConfig(), rng.Stream(name))
	}
	// Deliver loss notifications to the owning edge with control-plane
	// latency.
	net.OnDrop(func(d netem.Drop) {
		e, ok := edges[d.Packet.Flow.Edge]
		if !ok {
			return
		}
		local := d.Packet.Flow.Local
		rec.Lose(d.Packet.Flow)
		if err := net.SendControl(d.Node, d.Packet.Flow.Edge, func() { e.HandleLoss(local) }); err != nil {
			t.Errorf("SendControl: %v", err)
		}
	})

	for _, pl := range cloud.Placements {
		if err := flowEdges[pl.Index].StartFlow(locals[pl.Index]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}

	r1, _ := flowEdges[1].AllowedRate(locals[1])
	r2, _ := flowEdges[2].AllowedRate(locals[2])
	total := r1 + r2
	if total < 400 || total > 600 {
		t.Errorf("aggregate rate = %v, want ~500", total)
	}
	ratio := (r2 / 2) / r1
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("normalized ratio = %.2f (r1=%v r2=%v), want ~1", ratio, r1, r2)
	}
	if rec.TotalLosses() == 0 {
		t.Error("CSFQ run recorded no losses; its congestion signal is losses")
	}
}
