// TCP-hosts demonstrates the paper's "agents like TCP" ongoing-work
// scenario (§4.4/§6): TCP-Reno-like end hosts send through Corelite edge
// shapers. The edges enforce weighted rate fairness on the TCP aggregates
// — something TCP cannot do by itself (left alone, TCP splits a bottleneck
// roughly equally regardless of policy) — while TCP's own loss recovery
// adapts each host to its shaper.
package main

import (
	"fmt"
	"os"
	"time"

	corelite "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcp-hosts:", err)
		os.Exit(1)
	}
}

func run() error {
	weights := map[int]float64{1: 1, 2: 2, 3: 3}
	sc := corelite.Scenario{
		Name:     "tcp-hosts",
		Scheme:   corelite.SchemeCorelite,
		Duration: 120 * time.Second,
		Seed:     5,
		NumFlows: 3,
		Weights:  weights,
		Dumbbell: true, // one 500 pkt/s bottleneck
		Transports: map[int]corelite.Transport{
			1: corelite.TransportTCP,
			2: corelite.TransportTCP,
			3: corelite.TransportTCP,
		},
	}
	res, err := corelite.Run(sc)
	if err != nil {
		return err
	}

	fmt.Println("Three TCP hosts behind Corelite edges, weights 1:2:3, one 500 pkt/s bottleneck")
	fmt.Println()
	fmt.Printf("%-6s %-8s %-18s %-18s %-10s\n", "flow", "weight", "goodput [60,120]s", "expected share", "losses")
	for i := 1; i <= 3; i++ {
		f := res.Flow(i)
		goodput := f.ReceiveRate.MeanOver(60*time.Second, 120*time.Second)
		fmt.Printf("%-6d %-8.0f %-18.1f %-18.1f %-10d\n",
			i, f.Weight, goodput, res.ExpectedFullSet[i], f.Losses)
	}

	var norm []float64
	for i := 1; i <= 3; i++ {
		norm = append(norm, res.Flow(i).ReceiveRate.MeanOver(60*time.Second, 120*time.Second)/weights[i])
	}
	fmt.Printf("\nJain index over normalized TCP goodputs: %.3f\n", corelite.JainIndex(norm))
	fmt.Println("\nThe shapers turn best-effort TCP traffic into weighted-fair aggregates;")
	fmt.Println("without them the three hosts would each take ~1/3 of the link.")
	return nil
}
