// Corelite-vs-CSFQ reproduces the paper's §4.2 startup comparison (Figures
// 5 and 6): ten flows with weights ⌈i/2⌉ start simultaneously on the
// Figure 2 topology under each scheme. The example reports per-flow
// convergence times, steady-state accuracy against the weighted max-min
// oracle, and packet losses — showing the paper's two claims: both schemes
// are fair in steady state, and Corelite converges much faster with far
// fewer losses because flows below their fair share never get throttled.
package main

import (
	"fmt"
	"os"
	"time"

	corelite "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "corelite-vs-csfq:", err)
		os.Exit(1)
	}
}

func run() error {
	coreliteRes, err := corelite.RunFig5(1)
	if err != nil {
		return err
	}
	csfqRes, err := corelite.RunFig6(1)
	if err != nil {
		return err
	}

	fmt.Println("Startup comparison: 10 flows, weights ceil(i/2), simultaneous start")
	fmt.Printf("\n%-6s %-8s %-10s %-22s %-22s\n", "flow", "weight", "expected",
		"corelite conv / final", "csfq conv / final")
	for i := 1; i <= 10; i++ {
		cl := coreliteRes.Flow(i)
		cs := csfqRes.Flow(i)
		want := coreliteRes.ExpectedFullSet[i]
		fmt.Printf("%-6d %-8.0f %-10.1f %-22s %-22s\n", i, cl.Weight, want,
			convergence(cl, want), convergence(cs, want))
	}
	fmt.Printf("\nlosses: corelite %d, csfq %d\n", coreliteRes.TotalLosses, csfqRes.TotalLosses)
	fmt.Println("\nThe paper's §4.2 finding holds: both schemes settle on the weighted")
	fmt.Println("fair shares, but CSFQ's fair-share estimator mis-tracks during startup,")
	fmt.Println("so its flows lose packets before reaching their share and converge")
	fmt.Println("tens of seconds later than Corelite's.")
	return nil
}

// convergence renders "time-to-±25% / final-rate" for one flow.
func convergence(f *corelite.FlowResult, expected float64) string {
	at, ok := corelite.ConvergenceTime(f.AllowedRate, expected, 0.25)
	conv := "never"
	if ok {
		conv = at.Round(time.Second).String()
	}
	return fmt.Sprintf("%s / %.1f", conv, f.AllowedRate.Final())
}
