// Quickstart: two flows with rate weights 1 and 2 share one 4 Mbps
// bottleneck under Corelite. The run prints each flow's allowed rate as it
// converges to the weighted max-min shares (≈167 and ≈333 packets/second)
// without a single packet loss.
package main

import (
	"fmt"
	"os"
	"time"

	corelite "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	sc := corelite.Scenario{
		Name:     "quickstart",
		Scheme:   corelite.SchemeCorelite,
		Duration: 60 * time.Second,
		Seed:     1,
		NumFlows: 2,
		Weights:  map[int]float64{1: 1, 2: 2},
		Dumbbell: true, // single 500 pkt/s bottleneck
	}
	res, err := corelite.Run(sc)
	if err != nil {
		return err
	}

	fmt.Println("Two flows, weights 1:2, one 500 pkt/s bottleneck (Corelite)")
	fmt.Println()
	fmt.Printf("%-8s %-14s %-14s\n", "time", "flow1 (w=1)", "flow2 (w=2)")
	for t := 5 * time.Second; t <= sc.Duration; t += 5 * time.Second {
		r1, _ := res.Flow(1).AllowedRate.ValueAt(t)
		r2, _ := res.Flow(2).AllowedRate.ValueAt(t)
		fmt.Printf("%-8v %-14.1f %-14.1f\n", t, r1, r2)
	}
	fmt.Println()
	fmt.Printf("expected weighted max-min shares: flow1 %.1f, flow2 %.1f pkt/s\n",
		res.ExpectedFullSet[1], res.ExpectedFullSet[2])
	fmt.Printf("total packet losses: %d (Corelite throttles before queues overflow)\n",
		res.TotalLosses)
	return nil
}
