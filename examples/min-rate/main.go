// Min-rate demonstrates Corelite's minimum rate contracts (paper §4.1/§6):
// a "video" flow contracts 200 pkt/s; best-effort flows join every 20
// seconds and squeeze the shared excess, but the contracted floor holds
// throughout because the video flow's in-profile traffic carries no
// markers and therefore never draws feedback.
package main

import (
	"fmt"
	"os"
	"time"

	corelite "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "min-rate:", err)
		os.Exit(1)
	}
}

func run() error {
	sc := corelite.Scenario{
		Name:     "min-rate",
		Scheme:   corelite.SchemeCorelite,
		Duration: 100 * time.Second,
		Seed:     3,
		NumFlows: 4,
		Weights:  map[int]float64{1: 1, 2: 1, 3: 1, 4: 1},
		MinRates: map[int]float64{1: 200},
		Dumbbell: true, // one 500 pkt/s bottleneck
		Schedules: map[int]corelite.Schedule{
			// Competition arrives in waves.
			3: corelite.Window(30*time.Second, 0),
			4: corelite.Window(60*time.Second, 0),
		},
	}
	res, err := corelite.Run(sc)
	if err != nil {
		return err
	}

	fmt.Println("Flow 1 holds a 200 pkt/s contract on a 500 pkt/s bottleneck;")
	fmt.Println("best-effort flows join at t=30s and t=60s.")
	fmt.Println()
	fmt.Printf("%-8s %-16s %-12s %-12s %-12s\n", "time", "video (min=200)", "be-1", "be-2", "be-3")
	for t := 20 * time.Second; t <= sc.Duration; t += 20 * time.Second {
		row := fmt.Sprintf("%-8v", t)
		for i := 1; i <= 4; i++ {
			v, ok := res.Flow(i).AllowedRate.ValueAt(t)
			cell := "-"
			if ok && v > 0 {
				cell = fmt.Sprintf("%.0f", v)
			}
			width := 12
			if i == 1 {
				width = 16
			}
			row += fmt.Sprintf(" %-*s", width, cell)
		}
		fmt.Println(row)
	}

	fmt.Println()
	for _, at := range []time.Duration{25 * time.Second, 95 * time.Second} {
		expected, err := corelite.ExpectedRatesAt(sc, at)
		if err != nil {
			return err
		}
		fmt.Printf("expected at t=%v: video %.0f", at, expected[1])
		for i := 2; i <= 4; i++ {
			if v, ok := expected[i]; ok {
				fmt.Printf(", be %.0f", v)
			}
		}
		fmt.Println()
	}

	low := 1e18
	for _, s := range res.Flow(1).AllowedRate {
		if s.Value > 0 && s.Value < low {
			low = s.Value
		}
	}
	fmt.Printf("\nlowest allowed rate ever observed for the video flow: %.0f pkt/s (contract 200)\n", low)
	return nil
}
