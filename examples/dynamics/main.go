// Dynamics reproduces the paper's §4.1 scenario end to end (Figures 3 and
// 4): 20 flows with weights {1, 2, 3} on the three-bottleneck Figure 2
// topology; flows 1, 9, 10, 11 and 16 join at t=250s and leave at t=500s.
// The example prints the measured allowed rates against the analytical
// weighted max-min expectations for each phase, and verifies the Figure 4
// claim that equal-weight flows receive equal cumulative service regardless
// of round-trip time and hop count.
package main

import (
	"fmt"
	"os"
	"time"

	corelite "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dynamics:", err)
		os.Exit(1)
	}
}

func run() error {
	sc := corelite.Fig3Scenario(1)
	fmt.Println("Running the §4.1 scenario (800 simulated seconds)...")
	res, err := corelite.Run(sc)
	if err != nil {
		return err
	}

	// Phase samples: mid-phase-1 (all but the late five), mid-phase-2
	// (everyone), late-phase-3 (late five gone again).
	for _, phase := range []struct {
		name string
		at   time.Duration
	}{
		{"phase 1 (t=200s): flows 1,9,10,11,16 absent", 200 * time.Second},
		{"phase 2 (t=400s): all 20 flows", 400 * time.Second},
		{"phase 3 (t=600s): back to 15 flows", 600 * time.Second},
	} {
		expected, err := corelite.ExpectedRatesAt(sc, phase.at)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s\n", phase.name)
		fmt.Printf("%-6s %-8s %-10s %-10s\n", "flow", "weight", "measured", "expected")
		for _, idx := range []int{1, 2, 5, 9, 11, 15, 16, 20} {
			f := res.Flow(idx)
			if f == nil {
				continue
			}
			want, active := expected[idx]
			if !active {
				continue
			}
			got, _ := f.AllowedRate.ValueAt(phase.at)
			fmt.Printf("%-6d %-8.0f %-10.1f %-10.1f\n", idx, f.Weight, got, want)
		}
	}

	// Figure 4's claim: equal-weight flows accumulate equal service even
	// across different RTTs and bottleneck counts (max-min, not
	// proportional fairness). Compare weight-2 flows with 1, 2 and 3
	// congested links.
	fmt.Println("\ncumulative service at t=750s (weight-2 flows, different paths):")
	for _, idx := range []int{2, 6, 13, 20} {
		f := res.Flow(idx)
		v, _ := f.Cumulative.ValueAt(750 * time.Second)
		fmt.Printf("  flow %-2d: %8.0f packets\n", idx, v)
	}
	fmt.Printf("\ntotal losses across 800s: %d\n", res.TotalLosses)
	return nil
}
