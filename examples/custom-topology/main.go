// Custom-topology shows how a user adapts the library beyond the paper's
// exact setup: a faster cloud (20 Mbps links, 5 ms hops), three rate
// classes (bronze=1, silver=2, gold=4) on a single bottleneck, staggered
// flow arrivals, and a custom router configuration using the §2.2
// marker-cache selector instead of the default cache-less one.
package main

import (
	"fmt"
	"os"
	"time"

	corelite "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "custom-topology:", err)
		os.Exit(1)
	}
}

func run() error {
	// Rate classes: flows 1-2 bronze, 3-4 silver, 5-6 gold.
	weights := map[int]float64{1: 1, 2: 1, 3: 2, 4: 2, 5: 4, 6: 4}

	router := corelite.DefaultRouterConfig()
	router.Selector = corelite.SelectorCache // §2.2 marker-cache feedback
	router.CacheSize = 1024

	edge := corelite.DefaultEdgeConfig()
	// A 5x faster cloud deserves a proportionally faster agent: higher
	// slow-start exit and coarser linear increase / decrease quanta.
	edge.Adapt.SSThresh = 160
	edge.Adapt.Alpha = 5
	edge.Adapt.Beta = 5
	router.Beta = 5

	sc := corelite.Scenario{
		Name:         "rate-classes",
		Scheme:       corelite.SchemeCorelite,
		Duration:     120 * time.Second,
		Seed:         7,
		NumFlows:     6,
		Weights:      weights,
		Dumbbell:     true,
		RouterConfig: router,
		EdgeConfig:   edge,
		TopologyOptions: corelite.TopologyOptions{
			LinkRateBps: 20e6,                 // 2500 pkt/s bottleneck
			LinkDelay:   5 * time.Millisecond, // metro-scale latency
		},
		Schedules: map[int]corelite.Schedule{
			// Gold flows join late and must still claim their 4x share.
			5: corelite.Window(40*time.Second, 0),
			6: corelite.Window(40*time.Second, 0),
		},
	}

	res, err := corelite.Run(sc)
	if err != nil {
		return err
	}

	fmt.Println("Custom cloud: 20 Mbps bottleneck, rate classes bronze/silver/gold")
	fmt.Println()
	// Before the gold flows join (t=35s), bronze:silver share 2500 as
	// 1:1:2:2; afterwards (t=115s) as 1:1:2:2:4:4.
	for _, at := range []time.Duration{35 * time.Second, 115 * time.Second} {
		expected, err := corelite.ExpectedRatesAt(sc, at)
		if err != nil {
			return err
		}
		fmt.Printf("t=%v\n", at)
		fmt.Printf("%-6s %-8s %-10s %-10s\n", "flow", "class", "measured", "expected")
		for i := 1; i <= 6; i++ {
			want, active := expected[i]
			if !active {
				continue
			}
			got, _ := res.Flow(i).AllowedRate.ValueAt(at)
			fmt.Printf("%-6d %-8s %-10.0f %-10.0f\n", i, class(weights[i]), got, want)
		}
		fmt.Println()
	}

	// Weighted fairness index over normalized rates at the end.
	var norm []float64
	for i := 1; i <= 6; i++ {
		norm = append(norm, res.Flow(i).AllowedRate.Final()/weights[i])
	}
	fmt.Printf("Jain index over normalized rates at t=120s: %.3f (1.0 = perfectly weighted-fair)\n",
		corelite.JainIndex(norm))
	fmt.Printf("losses: %d\n", res.TotalLosses)
	return nil
}

func class(w float64) string {
	switch w {
	case 1:
		return "bronze"
	case 2:
		return "silver"
	default:
		return "gold"
	}
}
